(* Domain-parallel batch decomposition.

   The unit of parallelism is the whole circuit: a run owns its
   hash-consed Bdd.manager, its Budget.t and its Stats.t, so runs are
   shared-nothing and a fixed pool of worker domains can drain a job
   queue without any cross-domain synchronization beyond the queue
   cursor itself (one Atomic.fetch_and_add per job claim).  Results land
   in a pre-sized array slot owned by exactly one worker, so the report
   is independent of scheduling: job [i]'s row is the same whether the
   batch ran on 1 domain or 8. *)

type job = { name : string; build : Bdd.manager -> Driver.spec }

let job ~name build = { name; build }

type error_kind = Parse_error | Internal | Out_of_budget | Other

let error_kind_name = function
  | Parse_error -> "parse-error"
  | Internal -> "internal"
  | Out_of_budget -> "out-of-budget"
  | Other -> "other"

type error = { kind : error_kind; message : string }

exception Job_rejected of error_kind * string

(* Every failure a job can produce, folded into the structured taxonomy
   instead of a flat string: the old [Failure msg -> Error msg] made a
   parse error, a driver invariant violation and budget exhaustion
   indistinguishable downstream, so the serve protocol could not tell a
   client error from an engine fault. *)
let classify = function
  | Job_rejected (kind, message) -> { kind; message }
  | Driver.Internal e -> { kind = Internal; message = Driver.internal_error_message e }
  | Budget.Out_of_budget { reason; where } ->
      {
        kind = Out_of_budget;
        message =
          Printf.sprintf "out of budget: %s exceeded in %s"
            (Budget.reason_name reason) where;
      }
  | Failure message -> { kind = Other; message }
  | e -> { kind = Other; message = Printexc.to_string e }

type summary = {
  algorithm : Mulop.algorithm;
  network : Network.t;
  lut_count : int;
  clb_count : int;
  depth : int;
  step_count : int;
  shannon_count : int;
  alpha_count : int;
  degraded_to : Budget.stage;
  findings : Diagnostic.t list;
  verified : bool option;
}

type job_report = {
  job : string;
  outcome : (summary, error) result;
  seconds : float;
  stats : Stats.t;
}

type report = { results : job_report list; domains : int; wall : float }

(* Decompose one already-built specification on the manager that built
   it, under a fresh budget, confining every failure to a structured
   [Error].  This is the shared engine of [run_job] and of the serve
   daemon's workers (which must build the spec themselves first, to
   fingerprint it for the cross-request cache). *)
let run_one ?lut_size ?objective ?timeout ?node_budget ?effort ?checks
    ?(verify = false) ~stats algorithm m spec =
  match
    let budget = Budget.create ?timeout ?node_budget ?effort ~stats () in
    let o =
      Mulop.run ?lut_size ?objective ~budget ?checks ~stats m algorithm spec
    in
    let verified =
      if verify then Some (Driver.verify m spec o.Mulop.network) else None
    in
    {
      algorithm;
      network = o.Mulop.network;
      lut_count = o.Mulop.lut_count;
      clb_count = o.Mulop.clb_count;
      depth = o.Mulop.depth;
      step_count = o.Mulop.step_count;
      shannon_count = o.Mulop.shannon_count;
      alpha_count = o.Mulop.alpha_count;
      degraded_to = o.Mulop.degraded_to;
      findings = o.Mulop.findings;
      verified;
    }
  with
  | summary -> Ok summary
  | exception e -> Error (classify e)

(* One job, start to finish, inside whichever domain claimed it.  Every
   per-run resource is created here — manager, budget, stats — and
   every exception (parse error of a lazily loaded file, driver
   invariant violation, out-of-memory of a pathological instance) is
   confined to this job's row instead of aborting the batch.  Timing is
   monotonic: a wall-clock (NTP) step mid-job must not produce negative
   [seconds]. *)
let run_job ?lut_size ?objective ?timeout ?node_budget ?effort ?checks
    ?verify algorithm jb =
  let stats = Stats.create () in
  let t0 = Mono.now () in
  let outcome =
    match
      let m = Bdd.manager () in
      (m, jb.build m)
    with
    | exception e -> Error (classify e)
    | m, spec ->
        run_one ?lut_size ?objective ?timeout ?node_budget ?effort ?checks
          ?verify ~stats algorithm m spec
  in
  { job = jb.name; outcome; seconds = Mono.now () -. t0; stats }

let run ?(jobs = 1) ?lut_size ?objective ?(algorithm = Mulop.Mulop_dc)
    ?timeout ?node_budget ?effort ?checks ?verify job_list =
  let arr = Array.of_list job_list in
  let n = Array.length arr in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <-
          Some
            (run_job ?lut_size ?objective ?timeout ?node_budget ?effort
               ?checks ?verify algorithm arr.(i));
        loop ()
      end
    in
    loop ()
  in
  let domains = max 1 (min jobs n) in
  let t0 = Mono.now () in
  (* The calling domain is worker 0; only the extra workers are spawned.
     [run_job] catches everything, so a worker only dies on truly
     asynchronous exceptions; [Domain.join] re-raises those. *)
  let spawned =
    if domains <= 1 then []
    else List.init (domains - 1) (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join spawned;
  let wall = Mono.now () -. t0 in
  let results =
    Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false (* every slot claimed *))
         results)
  in
  { results; domains; wall }

let failures report =
  List.filter_map
    (fun r ->
      match r.outcome with Ok _ -> None | Error e -> Some (r.job, e))
    report.results

let error_findings report =
  List.concat_map
    (fun r ->
      match r.outcome with
      | Ok s -> List.map (fun d -> (r.job, d)) (Diagnostic.errors s.findings)
      | Error _ -> [])
    report.results

(* ---- rendering ---- *)

let pp_text ?(stats = false) fmt report =
  Format.fprintf fmt "@[<v>%-12s | %6s %6s %6s %6s %8s | %8s %s@,"
    "job" "luts" "clbs" "depth" "steps" "shannon" "time" "";
  let total_luts = ref 0 and total_clbs = ref 0 and failed = ref 0 in
  List.iter
    (fun r ->
      match r.outcome with
      | Ok s ->
          total_luts := !total_luts + s.lut_count;
          total_clbs := !total_clbs + s.clb_count;
          Format.fprintf fmt "%-12s | %6d %6d %6d %6d %8d | %7.2fs %s%s%s@,"
            r.job s.lut_count s.clb_count s.depth s.step_count s.shannon_count
            r.seconds
            (match s.degraded_to with
            | Budget.Full -> ""
            | stage -> "degraded=" ^ Budget.stage_name stage)
            (match s.findings with
            | [] -> ""
            | fs -> Printf.sprintf " findings=%d" (List.length fs))
            (match s.verified with
            | Some true -> " verified"
            | Some false -> " VERIFY-FAILED"
            | None -> "")
      | Error e ->
          incr failed;
          Format.fprintf fmt "%-12s | FAILED[%s]: %s@," r.job
            (error_kind_name e.kind) e.message)
    report.results;
  Format.fprintf fmt "%-12s | %6d %6d %38s@," "total" !total_luts !total_clbs
    (Printf.sprintf "(%d jobs, %d domains, %.2fs wall%s)"
       (List.length report.results)
       report.domains report.wall
       (if !failed = 0 then "" else Printf.sprintf ", %d FAILED" !failed));
  if stats then
    List.iter
      (fun r -> Format.fprintf fmt "@,[%s]@,%a@," r.job Stats.pp r.stats)
      report.results;
  Format.fprintf fmt "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json report =
  let quote s = Printf.sprintf "\"%s\"" (json_escape s) in
  let field k v = Printf.sprintf "%s:%s" (quote k) v in
  let row r =
    let common =
      [
        field "job" (quote r.job);
        field "seconds" (Printf.sprintf "%.6f" r.seconds);
      ]
    in
    let rest =
      match r.outcome with
      | Ok s ->
          [
            field "status" (quote "ok");
            field "algorithm" (quote (Mulop.algorithm_name s.algorithm));
            field "luts" (string_of_int s.lut_count);
            field "clbs" (string_of_int s.clb_count);
            field "depth" (string_of_int s.depth);
            field "steps" (string_of_int s.step_count);
            field "shannon" (string_of_int s.shannon_count);
            field "alphas" (string_of_int s.alpha_count);
            field "degraded_to" (quote (Budget.stage_name s.degraded_to));
            field "findings" (Diagnostic.to_json s.findings);
          ]
          @ (match s.verified with
            | None -> []
            | Some ok -> [ field "verified" (string_of_bool ok) ])
      | Error e ->
          [
            field "status" (quote "failed");
            field "error_kind" (quote (error_kind_name e.kind));
            field "error" (quote e.message);
          ]
    in
    "{" ^ String.concat "," (common @ rest) ^ "}"
  in
  Printf.sprintf "{%s,%s,%s}"
    (field "domains" (string_of_int report.domains))
    (field "wall_seconds" (Printf.sprintf "%.6f" report.wall))
    (field "jobs"
       ("[" ^ String.concat "," (List.map row report.results) ^ "]"))
