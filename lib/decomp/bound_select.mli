(** Bound-set selection.

    Candidates are grown greedily from seed {e atoms}; an atom is a
    symmetry group (or a chunk of one), so that groups of symmetric
    variables tend to land inside the same bound set — the paper's use
    of symmetric sifting as the starting point of the search.  Candidate
    bound sets are scored by the number of distinct cofactor tuples
    (the joint class count before merging), lower being better. *)

val score :
  ?cache:Score_cache.t ->
  ?stats:Stats.t ->
  ?lut_size:int ->
  ?cost:Cost.t ->
  Bdd.manager ->
  Isf.t list ->
  int list ->
  int * int * int
(** Candidate quality, lexicographically smaller = better.  With
    [cache], cofactor vectors and whole scores are memoized (and scores
    are keyed by [lut_size] and the objective's {!Cost.key_of}
    fragment, so every scoring mode can share one cache without
    mixing); the result is identical with and without a cache.
    Counters land in the cache's stats when a cache is given, else in
    [stats] (else in a fresh throwaway).  A bound set that overlaps no
    ISF support scores worst-possible in every ordering — it reduces
    nothing, so it must never beat a genuine candidate.

    The leading component belongs to [cost] (default {!Cost.area}):
    constantly 0 under [Area] — the ordering is then exactly the
    classical pair — and the candidate's {!Cost.step_arrival} under
    [Delay].  The area pair behind it: at [lut_size <= 3] the negated
    net benefit — the total support reduction
    [sum_i (|B inter supp f_i| - r_i)] (with [r_i = ceil log2] of the
    distinct-cofactor count) minus the estimated realization cost of the
    decomposition functions ([ceil log2] of the joint class count, times
    the LUTs each function needs given [lut_size]) — then the joint
    distinct-cofactor count; at realistic LUT sizes the communication
    complexity [ncc(f, B)] comes first and the reduction breaks ties. *)

val select :
  ?cache:Score_cache.t ->
  ?cost:Cost.t ->
  ?check:(unit -> unit) ->
  Bdd.manager ->
  Config.t ->
  groups:Symmetry.group list ->
  eligible:int list ->
  Isf.t list ->
  int list option
(** Choose a bound set of size [min cfg.lut_size (|eligible| - 1)] from
    the eligible variables ([None] if fewer than 2 are eligible or no
    set of size >= 2 fits).  The returned list is ascending.  [cost]
    (default {!Cost.area}) supplies the objective every candidate is
    scored under.  [check] (default a no-op) is polled once per
    candidate scored and may raise to abandon the search — the
    {!Budget} governor polls here. *)

val select_curtis :
  ?cache:Score_cache.t ->
  ?cost:Cost.t ->
  ?check:(unit -> unit) ->
  ?extra:int ->
  Bdd.manager ->
  Config.t ->
  groups:Symmetry.group list ->
  eligible:int list ->
  Isf.t list ->
  int list option
(** A bound set one variable larger than the LUT size, offered only when
    its estimated net benefit (reduction minus sub-network realization
    cost of the decomposition functions) is positive.  Used by the driver
    as a second attempt after a LUT-sized step made no progress:
    symmetric carry/weight functions are not decomposable within small
    LUT sizes but compress perfectly with one extra bound variable. *)
