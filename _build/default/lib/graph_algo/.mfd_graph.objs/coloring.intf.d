lib/graph_algo/coloring.mli: Ugraph
