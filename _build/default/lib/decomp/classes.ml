type t = {
  bound : int list;
  nitems : int;
  node_of_vertex : int array;
  node_cof : Isf.t array array;
}

let nnodes t = Array.length t.node_cof
let nvertices t = Array.length t.node_of_vertex

let cofactor_matrix m isfs bound =
  let rec ascending = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a < b && ascending rest
  in
  if not (ascending bound) then
    invalid_arg "Classes.cofactor_matrix: bound set not ascending";
  let isfs = Array.of_list isfs in
  let nitems = Array.length isfs in
  let vecs = Array.map (fun f -> Isf.cofactor_vector m f bound) isfs in
  let nverts = 1 lsl List.length bound in
  let node_of_vertex = Array.make nverts (-1) in
  let table = Hashtbl.create 64 in
  let nodes = ref [] in
  let nnodes = ref 0 in
  for v = 0 to nverts - 1 do
    let key =
      Array.init nitems (fun i ->
          (Bdd.id (Isf.on vecs.(i).(v)), Bdd.id (Isf.dc vecs.(i).(v))))
    in
    match Hashtbl.find_opt table key with
    | Some node -> node_of_vertex.(v) <- node
    | None ->
        let node = !nnodes in
        incr nnodes;
        Hashtbl.add table key node;
        node_of_vertex.(v) <- node;
        nodes := Array.init nitems (fun i -> vecs.(i).(v)) :: !nodes
  done;
  { bound; nitems; node_of_vertex; node_cof = Array.of_list (List.rev !nodes) }

let joint_incompat m t =
  let count = nnodes t in
  let g = Ugraph.create count in
  for u = 0 to count - 1 do
    for v = u + 1 to count - 1 do
      let incompatible =
        let rec any i =
          i < t.nitems
          && ((not (Isf.compatible m t.node_cof.(u).(i) t.node_cof.(v).(i)))
             || any (i + 1))
        in
        any 0
      in
      if incompatible then Ugraph.add_edge g u v
    done
  done;
  g

let join_isfs m = function
  | [] -> invalid_arg "Classes.join_isfs: empty"
  | first :: rest ->
      let on, off =
        List.fold_left
          (fun (on, off) f -> (Bdd.or_ m on (Isf.on f), Bdd.or_ m off (Isf.off m f)))
          (Isf.on first, Isf.off m first)
          rest
      in
      Isf.of_on_off m ~on ~off

let item_incompat_of_groups m t item class_of_node nclasses =
  let members = Array.make nclasses [] in
  Array.iteri
    (fun node c -> members.(c) <- t.node_cof.(node).(item) :: members.(c))
    class_of_node;
  let joined = Array.map (join_isfs m) members in
  let g = Ugraph.create nclasses in
  for a = 0 to nclasses - 1 do
    for b = a + 1 to nclasses - 1 do
      if not (Isf.compatible m joined.(a) joined.(b)) then Ugraph.add_edge g a b
    done
  done;
  g

let ncc_csf m fs bound =
  let vecs = List.map (fun f -> Bdd.cofactor_vector m f bound) fs in
  let nverts = 1 lsl List.length bound in
  let table = Hashtbl.create 64 in
  for v = 0 to nverts - 1 do
    let key = List.map (fun vec -> Bdd.id vec.(v)) vecs in
    Hashtbl.replace table key ()
  done;
  Hashtbl.length table

let ncc_estimate m isfs bound =
  let t = cofactor_matrix m isfs bound in
  nnodes t
