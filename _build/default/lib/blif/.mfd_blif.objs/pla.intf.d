lib/blif/pla.mli: Bdd Cover Isf
