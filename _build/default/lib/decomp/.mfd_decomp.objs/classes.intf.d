lib/decomp/classes.mli: Bdd Isf Ugraph
