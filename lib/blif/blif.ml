exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

(* Logical lines: strip comments, join '\'-continuations, drop blanks.
   Returns (line_number, tokens). *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let rec go lineno pending pending_line acc = function
    | [] ->
        let acc = if pending = "" then acc else (pending_line, pending) :: acc in
        List.rev acc
    | line :: rest ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        let continued =
          String.length line > 0 && line.[String.length line - 1] = '\\'
        in
        let body =
          if continued then String.sub line 0 (String.length line - 1) else line
        in
        let joined = if pending = "" then body else pending ^ " " ^ body in
        let start = if pending = "" then lineno else pending_line in
        if continued then go (lineno + 1) joined start acc rest
        else if String.trim joined = "" then go (lineno + 1) "" 0 acc rest
        else go (lineno + 1) "" 0 ((start, joined) :: acc) rest
  in
  go 1 "" 0 [] raw
  |> List.map (fun (ln, s) ->
         ( ln,
           String.split_on_char ' ' s
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun t -> t <> "") ))
  |> List.filter (fun (_, toks) -> toks <> [])

type names_block = {
  nb_line : int;
  nb_inputs : string list;
  nb_output : string;
  nb_cubes : (string * char) list; (* input plane, output value *)
}

let parse text =
  let lines = logical_lines text in
  let inputs = ref [] and outputs = ref [] in
  let blocks = ref [] in
  let rec scan = function
    | [] -> ()
    | (ln, tokens) :: rest -> (
        match tokens with
        | ".model" :: _ -> scan rest
        | ".inputs" :: names ->
            inputs := !inputs @ List.map (fun n -> (ln, n)) names;
            scan rest
        | ".outputs" :: names ->
            outputs := !outputs @ List.map (fun n -> (ln, n)) names;
            scan rest
        | [ ".end" ] -> ()
        | ".names" :: signals -> (
            match List.rev signals with
            | [] -> fail ln ".names without signals"
            | out :: rev_ins ->
                let nb_inputs = List.rev rev_ins in
                let cubes, rest' = collect_cubes ln (List.length nb_inputs) rest in
                blocks :=
                  { nb_line = ln; nb_inputs; nb_output = out; nb_cubes = cubes }
                  :: !blocks;
                scan rest')
        | directive :: _ when String.length directive > 0 && directive.[0] = '.'
          ->
            fail ln (Printf.sprintf "unsupported directive %s" directive)
        | _ -> fail ln "cube line outside a .names block")
  and collect_cubes ln arity lines =
    match lines with
    | (cl, tokens) :: rest
      when (match tokens with t :: _ -> t.[0] <> '.' | [] -> false) -> (
        match (tokens, arity) with
        | [ out ], 0 when String.length out = 1 ->
            let cubes, rest' = collect_cubes ln arity rest in
            (("", out.[0]) :: cubes, rest')
        | [ plane; out ], _ when String.length out = 1 ->
            if String.length plane <> arity then
              fail cl "cube arity does not match .names";
            (* Validate here, with the line at hand — [Cover.cube_of_string]
               only runs at resolution time, far from any line number. *)
            String.iter
              (function
                | '0' | '1' | '-' | '2' -> ()
                | c -> fail cl (Printf.sprintf "bad cube char %C" c))
              plane;
            let cubes, rest' = collect_cubes ln arity rest in
            ((plane, out.[0]) :: cubes, rest')
        | _ -> fail cl "malformed cube")
    | rest -> ([], rest)
  in
  scan lines;
  let blocks = List.rev !blocks in
  (* Instantiate on demand: .names blocks may appear in any order. *)
  let net = Network.create () in
  let by_output = Hashtbl.create 16 in
  List.iter
    (fun b ->
      (match Hashtbl.find_opt by_output b.nb_output with
      | Some prev ->
          fail b.nb_line
            (Printf.sprintf "duplicate .names block for %s (first at line %d)"
               b.nb_output prev.nb_line)
      | None -> ());
      Hashtbl.replace by_output b.nb_output b)
    blocks;
  let resolved : (string, Network.signal) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (ln, name) ->
      if Hashtbl.mem resolved name then
        fail ln (Printf.sprintf "duplicate input %s" name);
      (match Hashtbl.find_opt by_output name with
      | Some b ->
          fail b.nb_line (Printf.sprintf ".names redefines input %s" name)
      | None -> ());
      Hashtbl.replace resolved name (Network.add_input net name))
    !inputs;
  let rec resolve stack name =
    match Hashtbl.find_opt resolved name with
    | Some s -> s
    | None ->
        if List.mem name stack then
          fail 0 (Printf.sprintf "combinational cycle through %s" name);
        let b =
          match Hashtbl.find_opt by_output name with
          | Some b -> b
          | None -> fail 0 (Printf.sprintf "undefined signal %s" name)
        in
        let fanins = List.map (resolve (name :: stack)) b.nb_inputs in
        let arity = List.length fanins in
        (* A .names body lists either on-set cubes (phase '1') or off-set
           cubes (phase '0'); mixed phases are rejected, as in SIS. *)
        let phases = List.sort_uniq compare (List.map snd b.nb_cubes) in
        let s =
          match phases with
          | [] -> Network.const net false
          | [ ('1' | '0') as phase ] ->
              let tt =
                Bv.of_fun arity (fun i ->
                    let hit =
                      List.exists
                        (fun (plane, _) ->
                          Cover.cube_eval (Cover.cube_of_string plane)
                            (fun k -> (i lsr k) land 1 = 1))
                        b.nb_cubes
                    in
                    if phase = '1' then hit else not hit)
              in
              Network.add_lut net ~fanins ~tt
          | _ -> fail b.nb_line "mixed or invalid output phases in .names"
        in
        Hashtbl.replace resolved name s;
        s
  in
  let seen_out = Hashtbl.create 16 in
  List.iter
    (fun (ln, name) ->
      if Hashtbl.mem seen_out name then
        fail ln (Printf.sprintf "duplicate output %s" name);
      Hashtbl.add seen_out name ();
      Network.set_output net name (resolve [] name))
    !outputs;
  net

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let print ?(model = "network") net =
  let buf = Buffer.create 1024 in
  let man = Bdd.manager () in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" model);
  let add_names prefix names =
    Buffer.add_string buf prefix;
    List.iter
      (fun n ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf n)
      names;
    Buffer.add_char buf '\n'
  in
  add_names ".inputs" (List.map fst (Network.inputs net));
  add_names ".outputs" (List.map fst (Network.outputs net));
  (* Give every needed signal a name.  Output names claim their driver
     when possible; clashes get a buffer .names at the end. *)
  let names = Hashtbl.create 64 in
  List.iter (fun (n, s) -> Hashtbl.replace names s n) (Network.inputs net);
  List.iter
    (fun (n, s) -> if not (Hashtbl.mem names s) then Hashtbl.replace names s n)
    (Network.outputs net);
  let name_of s =
    match Hashtbl.find_opt names s with
    | Some n -> n
    | None ->
        let n = Printf.sprintf "n%d" (Network.signal_id s) in
        Hashtbl.replace names s n;
        n
  in
  let visited = Hashtbl.create 64 in
  let rec emit s =
    if not (Hashtbl.mem visited s) then begin
      Hashtbl.add visited s ();
      List.iter emit (Network.fanins net s);
      match (Network.local_tt net s, Network.const_value net s) with
      | None, None -> () (* primary input *)
      | None, Some b ->
          add_names ".names" [ name_of s ];
          if b then Buffer.add_string buf "1\n"
      | Some tt, _ ->
          let fanins = Network.fanins net s in
          let arity = List.length fanins in
          let f = Bv.to_bdd man tt in
          let cubes = Minimize.cover_of_bdd man ~ninputs:arity ~on:f () in
          add_names ".names" (List.map name_of fanins @ [ name_of s ]);
          List.iter
            (fun c ->
              Buffer.add_string buf (Cover.string_of_cube c);
              Buffer.add_string buf " 1\n")
            cubes
    end
  in
  List.iter (fun (_, s) -> emit s) (Network.outputs net);
  (* Buffers for outputs whose driver is named differently (an input, or
     a signal already claimed by another output). *)
  List.iter
    (fun (oname, s) ->
      let n = name_of s in
      if n <> oname then begin
        add_names ".names" [ n; oname ];
        Buffer.add_string buf "1 1\n"
      end)
    (Network.outputs net);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file ?model path net =
  let oc = open_out path in
  output_string oc (print ?model net);
  close_out oc
